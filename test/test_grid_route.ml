(* Tests for Qr_route.Column_graph and Qr_route.Grid_route. *)

module Grid = Qr_graph.Grid
module Perm = Qr_perm.Perm
module Generators = Qr_perm.Generators
module Schedule = Qr_route.Schedule
module Column_graph = Qr_route.Column_graph
module Grid_route = Qr_route.Grid_route
module Decompose = Qr_bipartite.Decompose
module Rng = Qr_util.Rng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* ------------------------------------------------------------ Column_graph *)

let test_column_graph_shape () =
  let grid = Grid.make ~rows:3 ~cols:4 in
  let pi = Perm.identity 12 in
  let cg = Column_graph.build grid pi in
  checki "rows" 3 (Column_graph.rows cg);
  checki "cols" 4 (Column_graph.cols cg);
  checki "one edge per qubit" 12 (Column_graph.num_edges cg)

let test_column_graph_labels () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  (* Send (0,0) -> (1,1). *)
  let pi = Perm.extend_partial ~n:4 [ (Grid.index grid 0 0, Grid.index grid 1 1) ] in
  let cg = Column_graph.build grid pi in
  let e = Grid.index grid 0 0 in
  checki "src col" 0 (Column_graph.src_col cg e);
  checki "dst col" 1 (Column_graph.dst_col cg e);
  checki "src row" 0 (Column_graph.src_row cg e);
  checki "dst row" 1 (Column_graph.dst_row cg e)

let test_column_graph_regular () =
  (* For any permutation the column multigraph is m-regular. *)
  let rng = Rng.create 1 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let cg = Column_graph.build grid pi in
      checki "degree m" m
        (Decompose.check_regular ~nl:n ~nr:n ~edges:(Column_graph.hk_edges cg)))
    [ (2, 3); (4, 4); (5, 2); (1, 6) ]

let test_edges_in_band () =
  let grid = Grid.make ~rows:4 ~cols:2 in
  let pi = Perm.identity 8 in
  let cg = Column_graph.build grid pi in
  let live = Array.make 8 true in
  checki "rows 1..2 edges" 4
    (List.length (Column_graph.edges_in_band cg ~live ~lo:1 ~hi:2));
  live.(Grid.index grid 1 0) <- false;
  checki "dead edges excluded" 3
    (List.length (Column_graph.edges_in_band cg ~live ~lo:1 ~hi:2))

(* -------------------------------------------------------------- Grid_route *)

let grids = [ (1, 1); (1, 5); (5, 1); (2, 2); (3, 4); (4, 3); (5, 5); (6, 4) ]

let kinds g =
  Generators.paper_kinds g
  @ [ Generators.Identity; Generators.Reversal; Generators.Mirror_rows ]

let test_naive_routes_everything () =
  let rng = Rng.create 2 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      List.iter
        (fun kind ->
          let pi = Generators.generate grid kind rng in
          let s = Grid_route.route_naive grid pi in
          checkb "valid" true (Schedule.is_valid (Grid.graph grid) s);
          checkb "realizes" true (Schedule.realizes ~n:(m * n) s pi))
        (kinds grid))
    grids

let test_naive_euler_strategy () =
  let rng = Rng.create 3 in
  let grid = Grid.make ~rows:4 ~cols:5 in
  let pi = Perm.check (Rng.permutation rng 20) in
  let s = Grid_route.route_naive ~strategy:Grid_route.Euler_split grid pi in
  checkb "euler-based also correct" true (Schedule.realizes ~n:20 s pi)

let test_identity_routes_empty () =
  let grid = Grid.make ~rows:4 ~cols:4 in
  let s = Grid_route.route_naive grid (Perm.identity 16) in
  checki "identity costs nothing" 0 (Schedule.depth s)

let test_check_sigmas_detects_bad () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  (* pi = swap the two columns of row 0; sigma = identities leaves two
     qubits with the same destination column in the same row -> valid?
     For pi swapping (0,0)<->(0,1): row 0 holds both qubits; their dest
     columns are 1 and 0 - distinct, fine.  Use a genuinely bad sigma:
     pi sends both column-0 qubits to column 1 positions... that is not a
     permutation; instead craft sigma that collides: pi = identity needs
     distinct dest columns per row, identity sigma is fine; swap sigma of
     one column only is still a permutation per column but creates no
     collision for identity pi either (dest col = own col).  Collision test:
     pi maps (0,0)->(0,1) and (1,0)->(1,1)? impossible (two qubits to col 1
     row differ) - dest columns within a row collide only if two qubits in
     the same row target the same column. *)
  let pi =
    Qr_perm.Grid_perm.of_coord_map grid (fun (r, c) -> (r, 1 - c))
  in
  (* Column swap: row 0 holds (0,0)->(0,1) and (0,1)->(0,0): distinct dest
     cols.  With sigma sending both column-0 and column-1 qubits of row 0
     to row 1 we'd break the permutation property instead; so check the
     well-formedness path: non-permutation sigma must be rejected. *)
  let bad_sigmas = [| [| 0; 0 |]; [| 0; 1 |] |] in
  checkb "rejected" false (Grid_route.check_sigmas grid pi bad_sigmas)

let test_sigmas_of_assignment_valid () =
  let rng = Rng.create 4 in
  let grid = Grid.make ~rows:3 ~cols:4 in
  let pi = Perm.check (Rng.permutation rng 12) in
  let cg = Column_graph.build grid pi in
  let matchings =
    Decompose.by_extraction ~nl:4 ~nr:4 ~edges:(Column_graph.hk_edges cg)
  in
  (* Hall guarantees 3 matchings (m = 3). *)
  checki "m matchings" 3 (List.length matchings);
  let assigned = [| 2; 0; 1 |] in
  let sigmas = Grid_route.sigmas_of_assignment cg ~matchings ~assigned_rows:assigned in
  checkb "precondition holds" true (Grid_route.check_sigmas grid pi sigmas);
  let s = Grid_route.route_with_sigmas grid pi sigmas in
  checkb "routes correctly" true (Schedule.realizes ~n:12 s pi)

let test_sigmas_of_assignment_rejects_bad_rows () =
  let grid = Grid.make ~rows:2 ~cols:2 in
  let pi = Perm.identity 4 in
  let cg = Column_graph.build grid pi in
  let matchings =
    Decompose.by_extraction ~nl:2 ~nr:2 ~edges:(Column_graph.hk_edges cg)
  in
  Alcotest.check_raises "row assignment must be a permutation"
    (Invalid_argument "Grid_route.sigmas_of_assignment: bad row assignment")
    (fun () ->
      ignore
        (Grid_route.sigmas_of_assignment cg ~matchings ~assigned_rows:[| 0; 0 |]))

let test_depth_bound_three_phases () =
  (* Odd-even gives each phase <= line length; total <= 2m + n. *)
  let rng = Rng.create 5 in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      for _ = 1 to 5 do
        let pi = Perm.check (Rng.permutation rng (m * n)) in
        let s = Grid_route.route_naive grid pi in
        checkb "<= 2m + n" true (Schedule.depth s <= (2 * m) + n)
      done)
    [ (3, 3); (4, 6); (6, 4); (2, 8) ]

let test_round_depths_sum () =
  let rng = Rng.create 6 in
  let grid = Grid.make ~rows:5 ~cols:6 in
  for _ = 1 to 5 do
    let pi = Perm.check (Rng.permutation rng 30) in
    let sigmas = Grid_route.naive_sigmas grid pi in
    let r1, r2, r3 = Grid_route.round_depths grid pi sigmas in
    checki "rounds sum to total depth" (r1 + r2 + r3)
      (Schedule.depth (Grid_route.route_with_sigmas grid pi sigmas));
    checkb "round bounds" true (r1 <= 5 && r2 <= 6 && r3 <= 5)
  done

let test_round_depths_row_local () =
  (* Locality-aware sigmas on a row-wise shift: rounds 1 and 3 must be
     empty (all movement is horizontal). *)
  let grid = Grid.make ~rows:6 ~cols:6 in
  let pi =
    Qr_perm.Grid_perm.of_coord_map grid (fun (r, c) -> (r, (c + 1) mod 6))
  in
  let sigmas = Qr_route.Local_grid_route.sigmas grid pi in
  let r1, r2, r3 = Grid_route.round_depths grid pi sigmas in
  checki "round 1 empty" 0 r1;
  checkb "round 2 does the work" true (r2 > 0);
  checki "round 3 empty" 0 r3

let naive_route_property =
  QCheck.Test.make ~name:"naive GridRoute correct on random instances"
    ~count:200
    QCheck.(triple (int_range 1 7) (int_range 1 7) (int_range 0 100000))
    (fun (m, n, seed) ->
      let grid = Grid.make ~rows:m ~cols:n in
      let rng = Rng.create seed in
      let pi = Perm.check (Rng.permutation rng (m * n)) in
      let s = Grid_route.route_naive grid pi in
      Schedule.is_valid (Grid.graph grid) s
      && Schedule.realizes ~n:(m * n) s pi
      && Schedule.depth s <= (2 * m) + n)

let () =
  let qc = QCheck_alcotest.to_alcotest in
  Alcotest.run "grid_route"
    [
      ( "column_graph",
        [
          Alcotest.test_case "shape" `Quick test_column_graph_shape;
          Alcotest.test_case "labels" `Quick test_column_graph_labels;
          Alcotest.test_case "m-regular" `Quick test_column_graph_regular;
          Alcotest.test_case "bands" `Quick test_edges_in_band;
        ] );
      ( "grid_route",
        [
          Alcotest.test_case "routes everything" `Quick test_naive_routes_everything;
          Alcotest.test_case "euler strategy" `Quick test_naive_euler_strategy;
          Alcotest.test_case "identity free" `Quick test_identity_routes_empty;
          Alcotest.test_case "check_sigmas" `Quick test_check_sigmas_detects_bad;
          Alcotest.test_case "sigmas_of_assignment" `Quick
            test_sigmas_of_assignment_valid;
          Alcotest.test_case "bad row assignment" `Quick
            test_sigmas_of_assignment_rejects_bad_rows;
          Alcotest.test_case "depth bound" `Quick test_depth_bound_three_phases;
          Alcotest.test_case "round depths sum" `Quick test_round_depths_sum;
          Alcotest.test_case "row-local rounds" `Quick
            test_round_depths_row_local;
          qc naive_route_property;
        ] );
    ]
