(* Benchmark harness regenerating the paper's evaluation.

   The paper (an extended abstract) has two figures and no tables:

     Figure 4 — depth of computed swap networks, per grid size, workload
                class and algorithm;
     Figure 5 — time spent finding the swap networks, same sweep.

   Modes (first CLI argument):

     fig4      print the Figure-4 depth series
     fig5      print the Figure-5 runtime series
     phases    per-strategy phase-cost breakdown (Qr_obs spans + counters);
               writes BENCH_phases.json
     parallel  route_batch throughput at 1/2/4/8 worker domains;
               writes BENCH_parallel.json
     overload  cancellation-checkpoint overhead and adaptive-admission
               behavior under a burst; writes BENCH_overload.json
     evloop    readiness-loop behavior over a live socket server: idle
               wakeups/sec, round-trip latency under idle connections
               and under a never-reading slow client;
               writes BENCH_evloop.json
     ablation  isolate each design choice of LocalGridRoute
     circuits  end-to-end transpilation of the motivating workloads
     realistic depth on permutations harvested from real transpilations
     micro     Bechamel micro-benchmarks (one Test.make per figure/ablation)
     all       everything above (default)

   Optional second argument: comma-separated square grid sides for the
   sweeps (default "4,8,12,16,20,24").  With QROUTE_CSV=<dir> in the
   environment, fig4/fig5 additionally write machine-readable CSV files
   (one row per grid x workload x strategy x seed) for plotting.  Every
   schedule produced anywhere in this harness is checked to realize its
   permutation. *)

open Qroute

(* Module aliases alone do not force the umbrella's initializer; complete
   the engine registry explicitly (idempotent). *)
let () = Token_engines.register ()

let default_sides = [ 4; 8; 12; 16; 20; 24 ]

let seeds = 5

(* One measured cell of the sweep: mean depth and mean seconds over seeds,
   with the correctness of each schedule asserted. *)
let measure ?on_sample grid kind engine =
  let depths = Array.make seeds 0. in
  let times = Array.make seeds 0. in
  for seed = 0 to seeds - 1 do
    let pi = Generators.generate grid kind (Rng.create (1000 + seed)) in
    let sched, seconds =
      Timer.time (fun () -> Router_intf.route_grid engine grid pi)
    in
    assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
    depths.(seed) <- float_of_int (Schedule.depth sched);
    times.(seed) <- seconds;
    match on_sample with
    | Some f -> f seed (Schedule.depth sched) (Schedule.size sched) seconds
    | None -> ()
  done;
  (Stats.mean depths, Stats.mean times)

let header title =
  Printf.printf "\n================ %s ================\n" title

(* Mean depth lower bound over the sweep's seeds, for the gap column. *)
let mean_lower_bound grid kind =
  let bounds = Array.make seeds 0. in
  for seed = 0 to seeds - 1 do
    let pi = Generators.generate grid kind (Rng.create (1000 + seed)) in
    bounds.(seed) <- float_of_int (Bounds.depth_lower_bound grid pi)
  done;
  Stats.mean bounds

let csv_dir () = Sys.getenv_opt "QROUTE_CSV"

(* Raw per-seed rows for external plotting. *)
let write_csv name rows =
  match csv_dir () with
  | None -> ()
  | Some dir ->
      let path = Filename.concat dir (name ^ ".csv") in
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc
            "grid_side,workload,strategy,seed,depth,swaps,seconds\n";
          List.iter
            (fun (side, kind, strategy, seed, depth, swaps, seconds) ->
              Out_channel.output_string oc
                (Printf.sprintf "%d,%s,%s,%d,%d,%d,%.9f\n" side kind strategy
                   seed depth swaps seconds))
            (List.rev rows));
      Printf.printf "(csv written to %s)\n" path

let csv_rows : (int * string * string * int * int * int * float) list ref =
  ref []

let record_csv side kind engine seed depth swaps seconds =
  if csv_dir () <> None then
    csv_rows :=
      (side, Generators.name kind, engine.Router_intf.name, seed, depth,
       swaps, seconds)
      :: !csv_rows

(* The sweep's engine set and column headers come from the registry, so a
   newly registered engine shows up in Figures 4 and 5 with no harness
   change. *)
let sweep sides pick render unit_label ~with_bound =
  let engines = Router_registry.all () in
  Printf.printf "%-6s %-13s" "grid" "workload";
  List.iter
    (fun e -> Printf.printf " %12s" e.Router_intf.name)
    engines;
  if with_bound then Printf.printf "        bound";
  print_newline ();
  List.iter
    (fun side ->
      let grid = Grid.make ~rows:side ~cols:side in
      List.iter
        (fun kind ->
          Printf.printf "%-6s %-13s"
            (Printf.sprintf "%dx%d" side side)
            (Generators.name kind);
          List.iter
            (fun engine ->
              let cell =
                pick
                  (measure
                     ~on_sample:(fun seed depth swaps seconds ->
                       record_csv side kind engine seed depth swaps seconds)
                     grid kind engine)
              in
              Printf.printf " %12s" (render cell))
            engines;
          if with_bound then
            Printf.printf " %12.2f" (mean_lower_bound grid kind);
          print_newline ())
        (Generators.paper_kinds grid))
    sides;
  Printf.printf "(%s; mean over %d seeds)\n" unit_label seeds

let fig4 sides =
  header "Figure 4: depth of computed swap networks";
  csv_rows := [];
  sweep sides fst
    (fun x -> Printf.sprintf "%.2f" x)
    "depth in matchings/SWAP layers; bound = displacement/cut lower bound"
    ~with_bound:true;
  write_csv "fig4" !csv_rows

let fig5 sides =
  header "Figure 5: time spent finding swap networks";
  csv_rows := [];
  sweep sides
    (fun (_, t) -> t)
    (fun x -> Printf.sprintf "%.6f" x)
    "seconds per routing call" ~with_bound:false;
  write_csv "fig5" !csv_rows

(* --------------------------------------------------------------- phases *)

(* Per-strategy phase-cost breakdown over the random workload: route with
   the span tracer and metrics registry on, print the per-phase summary,
   and write the whole sweep to BENCH_phases.json.  This is the yardstick
   for perf PRs: it attributes runtime to band search, MCBBM assignment,
   the three odd–even rounds, decomposition and ATS trials rather than one
   end-to-end wall clock. *)
let phases sides =
  header "Phase breakdown: where the routing time goes (random workload)";
  let engines = Router_registry.all () in
  let grids_json =
    List.map
      (fun side ->
        let grid = Grid.make ~rows:side ~cols:side in
        let per_strategy =
          List.map
            (fun engine ->
              Trace.start ();
              Metrics.reset ();
              Metrics.enable ();
              for seed = 0 to seeds - 1 do
                let pi =
                  Generators.generate grid Generators.Random
                    (Rng.create (1000 + seed))
                in
                let sched = Router_intf.route_grid engine grid pi in
                assert (Schedule.realizes ~n:(Grid.size grid) sched pi)
              done;
              let spans = Trace.stop () in
              Metrics.disable ();
              Printf.printf "\n-- %dx%d  %s  (%d seeds)\n%s" side side
                engine.Router_intf.name seeds (Trace.summary_table spans);
              Obs_json.Obj
                [
                  ("strategy", Obs_json.String engine.Router_intf.name);
                  ("phases", Trace.summary_json spans);
                  ("metrics", Metrics.to_json ());
                ])
            engines
        in
        Obs_json.Obj
          [
            ("grid_side", Obs_json.Int side);
            ("strategies", Obs_json.List per_strategy);
          ])
      sides
  in
  let doc =
    Obs_json.Obj
      [
        ("workload", Obs_json.String "random");
        ("seeds", Obs_json.Int seeds);
        ("grids", Obs_json.List grids_json);
      ]
  in
  let path = "BENCH_phases.json" in
  Out_channel.with_open_text path (fun oc -> Obs_json.to_channel oc doc);
  (* Self-check: what we wrote must parse back to the same document. *)
  let content = In_channel.with_open_text path In_channel.input_all in
  (match Obs_json.of_string content with
  | Ok parsed ->
      if not (Obs_json.equal parsed doc) then
        failwith "BENCH_phases.json did not round-trip"
  | Error msg -> failwith ("BENCH_phases.json is not well-formed: " ^ msg));
  Printf.printf "\n(phase breakdown written to %s)\n" path;
  (* The same registry in Prometheus text format (the last strategy's
     counts — the registry is reset per strategy above): an exemplar
     exposition for scrape-and-plot tooling, and a standing check that
     [to_prometheus] renders every instrument the routing stack
     registers. *)
  let prom_path = "BENCH_phases.prom" in
  Out_channel.with_open_text prom_path (fun oc ->
      output_string oc (Metrics.to_prometheus ()));
  Printf.printf "(prometheus exposition written to %s)\n" prom_path

(* ------------------------------------------------------------- parallel *)

(* Multicore scaling of route_batch-style fan-out: route the same bag of
   random permutations through a {!Worker_pool} of 1/2/4/8 domains and
   report throughput, speedup over the single-worker run and the
   per-item latency tail.  This is the yardstick for the [serve
   --workers N] mode: the pool and the per-item task closure here are
   exactly what the server's [route_batch] handler submits.  Writes
   BENCH_parallel.json.  On a single-core container the speedups will
   hover near 1.0 — the interesting numbers come from a multi-core
   runner (CI). *)
let parallel () =
  header "Parallel: route_batch throughput vs worker count (16x16, random)";
  let grid = Grid.make ~rows:16 ~cols:16 in
  let n = Grid.size grid in
  let engine = Router_registry.get "local" in
  let perm_count = 64 in
  let perms =
    List.init perm_count (fun i ->
        Generators.generate grid Generators.Random (Rng.create (11000 + i)))
  in
  let run workers =
    let pool = Worker_pool.create ~workers () in
    (* Warm-up pass so domain spawn cost and first-touch allocation stay
       out of the measured run. *)
    ignore
      (Worker_pool.map_tasks pool
         (fun pi -> Schedule.depth (Router_intf.route_grid engine grid pi))
         perms);
    let latencies, wall =
      Timer.time (fun () ->
          Worker_pool.map_tasks pool
            (fun pi ->
              let sched, seconds =
                Timer.time (fun () -> Router_intf.route_grid engine grid pi)
              in
              assert (Schedule.realizes ~n sched pi);
              seconds)
            perms)
    in
    Worker_pool.shutdown pool;
    let lat = Array.of_list latencies in
    Array.sort compare lat;
    ( float_of_int perm_count /. wall,
      wall,
      Stats.percentile lat 50.,
      Stats.percentile lat 99. )
  in
  let worker_counts = [ 1; 2; 4; 8 ] in
  let results = List.map (fun w -> (w, run w)) worker_counts in
  let base_throughput =
    match results with (_, (t, _, _, _)) :: _ -> t | [] -> nan
  in
  Printf.printf "%-8s %14s %10s %12s %12s\n" "workers" "perms/s" "speedup"
    "p50 (ms)" "p99 (ms)";
  let rows =
    List.map
      (fun (w, (throughput, wall, p50, p99)) ->
        let speedup = throughput /. base_throughput in
        Printf.printf "%-8d %14.1f %10.2f %12.3f %12.3f\n" w throughput
          speedup (p50 *. 1e3) (p99 *. 1e3);
        Obs_json.Obj
          [
            ("workers", Obs_json.Int w);
            ("throughput_per_s", Obs_json.Float throughput);
            ("wall_s", Obs_json.Float wall);
            ("speedup", Obs_json.Float speedup);
            ("p50_ms", Obs_json.Float (p50 *. 1e3));
            ("p99_ms", Obs_json.Float (p99 *. 1e3));
          ])
      results
  in
  let doc =
    Obs_json.Obj
      [
        ("workload", Obs_json.String "random");
        ("grid_side", Obs_json.Int 16);
        ("strategy", Obs_json.String "local");
        ("perms", Obs_json.Int perm_count);
        ("rows", Obs_json.List rows);
      ]
  in
  let path = "BENCH_parallel.json" in
  Out_channel.with_open_text path (fun oc -> Obs_json.to_channel oc doc);
  let content = In_channel.with_open_text path In_channel.input_all in
  (match Obs_json.of_string content with
  | Ok parsed ->
      if not (Obs_json.equal parsed doc) then
        failwith "BENCH_parallel.json did not round-trip"
  | Error msg ->
      failwith ("BENCH_parallel.json is not well-formed: " ^ msg));
  Printf.printf "(parallel scaling written to %s)\n" path

(* ------------------------------------------------------------- overload *)

(* The supervision plane under pressure, and the cost of being
   supervisable.  Two measurements:

   - {e checkpoint overhead}: the same routing workload with no cancel
     token vs a live (never-fired) ambient token — the per-poll cost of
     the cooperative-cancellation checkpoints, which DESIGN.md §14
     promises is noise;
   - {e burst behavior}: a burst several times the pool's queue bound is
     pushed through a worker pool under a supervisor with an adaptive
     queue-delay target; we record how many requests completed vs were
     shed, the retry hints handed out, and the completed requests'
     latency tail.  This is the shape of the serve-loop's admission
     logic ([Server.run_socket --workers N --queue-delay-ms T]) without
     the sockets.

   Writes BENCH_overload.json. *)
let overload () =
  header "Overload: cancellation overhead and adaptive admission";
  let grid = Grid.make ~rows:16 ~cols:16 in
  let n = Grid.size grid in
  let engine = Router_registry.get "local" in
  let perms =
    List.init 48 (fun i ->
        Generators.generate grid Generators.Random (Rng.create (23000 + i)))
  in
  let route pi = Router_intf.route_grid engine grid pi in
  let time_all label f =
    ignore (List.map f perms);
    (* warm-up *)
    let _, seconds = Timer.time (fun () -> ignore (List.map f perms)) in
    let per_route_ms = seconds /. float_of_int (List.length perms) *. 1e3 in
    Printf.printf "%-24s %10.3f ms/route\n" label per_route_ms;
    per_route_ms
  in
  let bare_ms = time_all "no cancel token" route in
  let watched_ms =
    time_all "live ambient token" (fun pi ->
        Cancel.with_ambient (Cancel.create ()) (fun () -> route pi))
  in
  let overhead_pct = (watched_ms -. bare_ms) /. bare_ms *. 100. in
  Printf.printf "checkpoint overhead: %+.1f%%\n" overhead_pct;
  (* Burst: queue bound 16, 4 workers, 160 submissions.  The supervisor
     sheds on queue-delay EWMA; the pool's hard bound sheds the rest. *)
  let workers = 4 and queue_bound = 16 and burst = 160 in
  let sup = Supervisor.create ~queue_delay_target_ms:2 ~workers () in
  let pool = Worker_pool.create ~queue_bound ~workers () in
  let completed = ref 0 and shed = ref 0 and hints = ref [] in
  let mutex = Mutex.create () in
  let latencies = ref [] in
  let submit i =
    let pi = List.nth perms (i mod List.length perms) in
    let submitted_ns = Timer.now_ns () in
    match Supervisor.should_shed sup with
    | Some hint ->
        Mutex.lock mutex;
        incr shed;
        hints := hint :: !hints;
        Mutex.unlock mutex
    | None ->
        let job () =
          Supervisor.note_queue_delay sup
            (Int64.sub (Timer.now_ns ()) submitted_ns);
          let sched, seconds = Timer.time (fun () -> route pi) in
          assert (Schedule.realizes ~n sched pi);
          Mutex.lock mutex;
          incr completed;
          latencies := seconds :: !latencies;
          Mutex.unlock mutex
        in
        if not (Worker_pool.submit pool job) then begin
          Mutex.lock mutex;
          incr shed;
          hints := Supervisor.retry_hint_ms sup :: !hints;
          Mutex.unlock mutex
        end
  in
  let _, wall = Timer.time (fun () ->
      for i = 0 to burst - 1 do
        submit i
      done;
      Worker_pool.shutdown pool)
  in
  let lat = Array.of_list !latencies in
  Array.sort compare lat;
  let p50 = if Array.length lat = 0 then nan else Stats.percentile lat 50. in
  let p99 = if Array.length lat = 0 then nan else Stats.percentile lat 99. in
  let mean_hint =
    match !hints with
    | [] -> 0.
    | l ->
        float_of_int (List.fold_left ( + ) 0 l) /. float_of_int (List.length l)
  in
  Printf.printf
    "burst %d through %d workers (bound %d): %d completed, %d shed, mean \
     retry hint %.0f ms, p50 %.3f ms, p99 %.3f ms\n"
    burst workers queue_bound !completed !shed mean_hint (p50 *. 1e3)
    (p99 *. 1e3);
  if !completed + !shed <> burst then
    failwith "overload bench lost requests: completed + shed <> burst";
  let doc =
    Obs_json.Obj
      [
        ("grid_side", Obs_json.Int 16);
        ("strategy", Obs_json.String "local");
        ("cancel_overhead_pct", Obs_json.Float overhead_pct);
        ("bare_ms_per_route", Obs_json.Float bare_ms);
        ("watched_ms_per_route", Obs_json.Float watched_ms);
        ( "burst",
          Obs_json.Obj
            [
              ("submissions", Obs_json.Int burst);
              ("workers", Obs_json.Int workers);
              ("queue_bound", Obs_json.Int queue_bound);
              ("queue_delay_target_ms", Obs_json.Int 2);
              ("completed", Obs_json.Int !completed);
              ("shed", Obs_json.Int !shed);
              ("mean_retry_hint_ms", Obs_json.Float mean_hint);
              ("wall_s", Obs_json.Float wall);
              ("p50_ms", Obs_json.Float (p50 *. 1e3));
              ("p99_ms", Obs_json.Float (p99 *. 1e3));
            ] );
      ]
  in
  let path = "BENCH_overload.json" in
  Out_channel.with_open_text path (fun oc -> Obs_json.to_channel oc doc);
  let content = In_channel.with_open_text path In_channel.input_all in
  (match Obs_json.of_string content with
  | Ok parsed ->
      if not (Obs_json.equal parsed doc) then
        failwith "BENCH_overload.json did not round-trip"
  | Error msg ->
      failwith ("BENCH_overload.json is not well-formed: " ^ msg));
  Printf.printf "(overload behavior written to %s)\n" path

(* --------------------------------------------------------------- evloop *)

(* Readiness-loop behavior over a live Unix-domain socket server
   (DESIGN.md §15), measured from the outside:

   - {e idle wakeups}: the [server_loop_wakeups] counter delta over a
     quiet window — the old loop ticked every second even with nothing
     to do; the event loop arms no timer and must sit at ~0/s;
   - {e connection scaling}: round-trip latency of a busy connection
     while dozens of idle connections are parked in the poll set;
   - {e slow reader}: the same round-trips while one client floods
     pipelined requests and never reads a byte.  The historical
     blocking write_all wedged the accept loop on that client; the
     write-queued loop must keep the healthy tail close to baseline and
     close the staller at its outbox cap ([server_slow_client_closes]).

   Writes BENCH_evloop.json. *)
let evloop () =
  header "Event loop: idle wakeups, connection scaling, slow reader";
  (* The staller's descriptor is closed server-side mid-flood; writes
     into it must surface as EPIPE, not kill the harness. *)
  ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore);
  let module Session = Server_session in
  let module P = Server_protocol in
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "qr_bench_evloop_%d.sock" (Unix.getpid ()))
  in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let outbox_cap = 65_536 in
  let config =
    { Session.default_config with Session.max_outbox_bytes = outbox_cap }
  in
  (* The child would otherwise replay the parent's buffered stdout. *)
  flush stdout;
  match Unix.fork () with
  | 0 ->
      (try Server.run_socket ~config ~path () with _ -> ());
      exit 0
  | child ->
      let finally () =
        (try Unix.kill child Sys.sigterm with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] child) with Unix.Unix_error _ -> ());
        try Unix.unlink path with Unix.Unix_error _ -> ()
      in
      Fun.protect ~finally @@ fun () ->
      let rec await tries =
        if tries = 0 then failwith "evloop bench: server socket never appeared";
        if not (Sys.file_exists path) then begin
          Unix.sleepf 0.02;
          await (tries - 1)
        end
      in
      await 250;
      let connect () =
        let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      in
      let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
      (* One blocking request/response round trip on a persistent
         connection; every response envelope is validated. *)
      let route_line id =
        Printf.sprintf
          {|{"id": %d, "method": "route", "params": {"grid": {"rows": 3, "cols": 3}, "perm": [8,7,6,5,4,3,2,1,0], "engine": "local"}}|}
          id
      in
      let chunk = Bytes.create 4096 in
      let inbox = Buffer.create 512 in
      let round_trip fd line =
        let line = line ^ "\n" in
        let len = String.length line in
        let rec send off =
          if off < len then send (off + Unix.write_substring fd line off (len - off))
        in
        send 0;
        let rec recv () =
          match String.index_opt (Buffer.contents inbox) '\n' with
          | Some i ->
              let data = Buffer.contents inbox in
              let response = String.sub data 0 i in
              Buffer.clear inbox;
              Buffer.add_substring inbox data (i + 1)
                (String.length data - i - 1);
              response
          | None -> (
              match Unix.read fd chunk 0 4096 with
              | 0 -> failwith "evloop bench: server closed the busy connection"
              | k ->
                  Buffer.add_subbytes inbox chunk 0 k;
                  recv ())
        in
        let response = recv () in
        (match P.response_result (Obs_json.of_string_exn response) with
        | Ok _ -> ()
        | Error err ->
            failwith ("evloop bench: error response: " ^ err.P.message));
        response
      in
      let counter_rpc fd name =
        let reply =
          round_trip fd (Printf.sprintf {|{"id": 0, "method": "metrics"}|})
        in
        match P.response_result (Obs_json.of_string_exn reply) with
        | Ok metrics -> (
            match Obs_json.member "counters" metrics with
            | Some (Obs_json.Obj fields) -> (
                match List.assoc_opt name fields with
                | Some (Obs_json.Int n) -> n
                | _ -> 0)
            | _ -> 0)
        | Error err -> failwith ("evloop bench: metrics: " ^ err.P.message)
      in
      let busy = connect () in
      Fun.protect ~finally:(fun () -> close busy) @@ fun () ->
      (* Warm-up: plan cache filled, steady state. *)
      for i = 1 to 10 do
        ignore (round_trip busy (route_line i))
      done;
      (* Idle wakeups: calibrate the cost of the probe itself with two
         back-to-back reads, then measure a quiet window. *)
      let w_a = counter_rpc busy "server_loop_wakeups" in
      let w_b = counter_rpc busy "server_loop_wakeups" in
      let probe_cost = w_b - w_a in
      let window_s = 3.0 in
      Unix.sleepf window_s;
      let w_c = counter_rpc busy "server_loop_wakeups" in
      let idle_wakeups_per_s =
        Float.max 0. (float_of_int (w_c - w_b - probe_cost) /. window_s)
      in
      Printf.printf
        "idle wakeups: %.2f/s over a %.0fs window (probe costs %d wakeups)\n"
        idle_wakeups_per_s window_s probe_cost;
      let requests = 200 in
      let timed_run label ~before_each =
        let samples = Array.make requests 0. in
        for i = 0 to requests - 1 do
          before_each ();
          let _, seconds =
            Timer.time (fun () -> round_trip busy (route_line (100 + i)))
          in
          samples.(i) <- seconds *. 1e3
        done;
        Array.sort compare samples;
        let p50 = Stats.percentile samples 50. in
        let p99 = Stats.percentile samples 99. in
        Printf.printf "%-28s p50 %8.3f ms   p99 %8.3f ms\n" label p50 p99;
        (p50, p99)
      in
      (* Baseline with a pile of idle connections parked in the poll
         set: scaling in fd count, not in work. *)
      let idle_conns = List.init 64 (fun _ -> connect ()) in
      Fun.protect ~finally:(fun () -> List.iter close idle_conns) @@ fun () ->
      let base_p50, base_p99 =
        timed_run "64 idle connections" ~before_each:(fun () -> ())
      in
      (* Slow reader: flood without ever reading, topped up nonblocking
         before every timed round trip so the stall persists through the
         measurement. *)
      let staller = connect () in
      Fun.protect ~finally:(fun () -> close staller) @@ fun () ->
      Unix.set_nonblock staller;
      let flood_line = route_line 7777 ^ "\n" in
      let flood = String.concat "" (List.init 64 (fun _ -> flood_line)) in
      let staller_open = ref true in
      let top_up () =
        if !staller_open then
          try ignore (Unix.write_substring staller flood 0 (String.length flood))
          with
          | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
          | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
              staller_open := false
      in
      for _ = 1 to 50 do
        top_up ()
      done;
      let stall_p50, stall_p99 = timed_run "one never-reading client" ~before_each:top_up in
      (* The staller must be closed at the cap once its backlog passes
         the kernel buffer plus the outbox bound. *)
      let rec await_close tries =
        if tries = 0 then 0
        else
          let n = counter_rpc busy "server_slow_client_closes" in
          if n >= 1 then n
          else begin
            top_up ();
            Unix.sleepf 0.1;
            await_close (tries - 1)
          end
      in
      let slow_closes = await_close 100 in
      Printf.printf "slow clients closed at the %d-byte cap: %d\n" outbox_cap
        slow_closes;
      if slow_closes < 1 then
        failwith "evloop bench: staller was never closed at the outbox cap";
      let ratio = if base_p99 > 0. then stall_p99 /. base_p99 else nan in
      Printf.printf "p99 under stall / p99 baseline: %.2fx\n" ratio;
      let doc =
        Obs_json.Obj
          [
            ("workers", Obs_json.Int 1);
            ( "idle",
              Obs_json.Obj
                [
                  ("window_s", Obs_json.Float window_s);
                  ("probe_cost_wakeups", Obs_json.Int probe_cost);
                  ("wakeups_per_s", Obs_json.Float idle_wakeups_per_s);
                ] );
            ( "baseline",
              Obs_json.Obj
                [
                  ("idle_connections", Obs_json.Int 64);
                  ("requests", Obs_json.Int requests);
                  ("p50_ms", Obs_json.Float base_p50);
                  ("p99_ms", Obs_json.Float base_p99);
                ] );
            ( "slow_reader",
              Obs_json.Obj
                [
                  ("requests", Obs_json.Int requests);
                  ("max_outbox_bytes", Obs_json.Int outbox_cap);
                  ("p50_ms", Obs_json.Float stall_p50);
                  ("p99_ms", Obs_json.Float stall_p99);
                  ("p99_ratio", Obs_json.Float ratio);
                  ("slow_client_closes", Obs_json.Int slow_closes);
                ] );
          ]
      in
      let out = "BENCH_evloop.json" in
      Out_channel.with_open_text out (fun oc -> Obs_json.to_channel oc doc);
      let content = In_channel.with_open_text out In_channel.input_all in
      (match Obs_json.of_string content with
      | Ok parsed ->
          if not (Obs_json.equal parsed doc) then
            failwith "BENCH_evloop.json did not round-trip"
      | Error msg -> failwith ("BENCH_evloop.json is not well-formed: " ^ msg));
      Printf.printf "(event-loop behavior written to %s)\n" out

(* ------------------------------------------------------------- ablations *)

let ablation_discovery_assignment () =
  header "Ablation A: banded discovery x MCBBM assignment (LocalGridRoute)";
  let side = 16 in
  let grid = Grid.make ~rows:side ~cols:side in
  Printf.printf "%-13s %14s %14s %14s %14s %14s\n" "workload" "doubling+mcbbm"
    "doubling+arb" "whole+mcbbm" "whole+arb" "band4+mcbbm";
  (* Each cell is the [local1] engine under a different configuration —
     the knobs travel through Router_config rather than ad-hoc labels. *)
  let configurations =
    List.map
      (fun spec -> Router_config.of_string_exn spec)
      [ "discovery=doubling,assignment=mcbbm";
        "discovery=doubling,assignment=arbitrary";
        "discovery=whole,assignment=mcbbm";
        "discovery=whole,assignment=arbitrary";
        "discovery=fixed:4,assignment=mcbbm" ]
  in
  let local1 = Router_registry.get "local1" in
  List.iter
    (fun kind ->
      let mean_depth config =
        let depths = Array.make seeds 0. in
        for seed = 0 to seeds - 1 do
          let pi = Generators.generate grid kind (Rng.create (2000 + seed)) in
          let sched = Router_intf.route_grid ~config local1 grid pi in
          assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
          depths.(seed) <- float_of_int (Schedule.depth sched)
        done;
        Stats.mean depths
      in
      let cells = List.map mean_depth configurations in
      Printf.printf "%-13s %14.2f %14.2f %14.2f %14.2f %14.2f\n"
        (Generators.name kind) (List.nth cells 0) (List.nth cells 1)
        (List.nth cells 2) (List.nth cells 3) (List.nth cells 4))
    (Generators.paper_kinds grid)

let ablation_transpose () =
  header "Ablation B: transpose trick (Algorithm 1 vs Algorithm 2 alone)";
  Printf.printf "%-8s %-13s %14s %13s\n" "grid" "workload" "transpose=off"
    "transpose=on";
  let local = Router_registry.get "local" in
  List.iter
    (fun (m, n) ->
      let grid = Grid.make ~rows:m ~cols:n in
      List.iter
        (fun kind ->
          let mean config =
            let depths = Array.make seeds 0. in
            for seed = 0 to seeds - 1 do
              let pi = Generators.generate grid kind (Rng.create (3000 + seed)) in
              let sched = Router_intf.route_grid ~config local grid pi in
              depths.(seed) <- float_of_int (Schedule.depth sched)
            done;
            Stats.mean depths
          in
          Printf.printf "%-8s %-13s %14.2f %13.2f\n"
            (Printf.sprintf "%dx%d" m n)
            (Generators.name kind)
            (mean { Router_config.default with transpose = false })
            (mean Router_config.default))
        (Generators.paper_kinds grid))
    [ (8, 24); (24, 8); (16, 16) ]

let ablation_compaction () =
  header "Ablation C: ASAP compaction post-pass";
  let side = 16 in
  let grid = Grid.make ~rows:side ~cols:side in
  let n = Grid.size grid in
  Printf.printf "%-13s %-11s %10s %12s\n" "workload" "strategy" "depth"
    "compacted";
  List.iter
    (fun kind ->
      List.iter
        (fun name ->
          let engine = Router_registry.get name in
          let before = Array.make seeds 0. and after = Array.make seeds 0. in
          for seed = 0 to seeds - 1 do
            let pi = Generators.generate grid kind (Rng.create (4000 + seed)) in
            let sched = Router_intf.route_grid engine grid pi in
            let compacted =
              Router_intf.route_grid
                ~config:{ Router_config.default with compaction = true }
                engine grid pi
            in
            assert (Schedule.realizes ~n compacted pi);
            before.(seed) <- float_of_int (Schedule.depth sched);
            after.(seed) <- float_of_int (Schedule.depth compacted)
          done;
          Printf.printf "%-13s %-11s %10.2f %12.2f\n" (Generators.name kind)
            name (Stats.mean before) (Stats.mean after))
        [ "local"; "naive" ])
    (Generators.paper_kinds grid)

let ablation_decompose () =
  header "Ablation D: regular-multigraph decomposition strategy (naive router)";
  Printf.printf "%-8s %18s %18s\n" "grid" "extraction (s)" "euler-split (s)";
  List.iter
    (fun side ->
      let grid = Grid.make ~rows:side ~cols:side in
      let time strategy =
        let times = Array.make seeds 0. in
        for seed = 0 to seeds - 1 do
          let pi =
            Generators.generate grid Generators.Random (Rng.create (5000 + seed))
          in
          let sched, seconds =
            Timer.time (fun () -> Grid_route.route_naive ~strategy grid pi)
          in
          assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
          times.(seed) <- seconds
        done;
        Stats.mean times
      in
      Printf.printf "%-8s %18.5f %18.5f\n"
        (Printf.sprintf "%dx%d" side side)
        (time Grid_route.Extraction)
        (time Grid_route.Euler_split))
    [ 8; 16; 24 ]

let ablation_ats_trials () =
  header "Ablation E: randomized trials in parallel ATS";
  let side = 16 in
  let grid = Grid.make ~rows:side ~cols:side in
  let ats = Router_registry.get "ats" in
  Printf.printf "%-13s %12s %12s %12s\n" "workload" "trials=1" "trials=4"
    "trials=8";
  List.iter
    (fun kind ->
      let mean trials =
        let config = { Router_config.default with ats_trials = trials } in
        let depths = Array.make seeds 0. in
        for seed = 0 to seeds - 1 do
          let pi = Generators.generate grid kind (Rng.create (6000 + seed)) in
          let sched = Router_intf.route_grid ~config ats grid pi in
          depths.(seed) <- float_of_int (Schedule.depth sched)
        done;
        Stats.mean depths
      in
      Printf.printf "%-13s %12.2f %12.2f %12.2f\n" (Generators.name kind)
        (mean 1) (mean 4) (mean 8))
    (Generators.paper_kinds grid)

let workload_characterization () =
  header "Workload characterization (Perm_stats, 16x16, seed 1000)";
  let grid = Grid.make ~rows:16 ~cols:16 in
  Printf.printf "%-13s %s\n" "workload" "statistics";
  List.iter
    (fun kind ->
      let pi = Generators.generate grid kind (Rng.create 1000) in
      let stats = Perm_stats.compute grid pi in
      let boxes = Perm_stats.cycle_bounding_boxes grid pi in
      let max_box =
        List.fold_left (fun acc (h, w) -> max acc (max h w)) 0 boxes
      in
      Format.printf "%-13s %a max_box=%d@." (Generators.name kind)
        Perm_stats.pp stats max_box)
    (Generators.paper_kinds grid @ [ Generators.Reversal ])

let ablation_noise () =
  header "Ablation F: estimated success probability of the routed circuit";
  let grid = Grid.make ~rows:8 ~cols:8 in
  let n = Grid.size grid in
  Printf.printf "%-13s %-11s %10s %10s %14s\n" "workload" "strategy" "depth"
    "swaps" "log10(success)";
  List.iter
    (fun kind ->
      List.iter
        (fun strategy ->
          let pi = Generators.generate grid kind (Rng.create 7000) in
          let sched = Strategy.route strategy grid pi in
          let circuit = Circuit.of_schedule ~num_qubits:n sched in
          Printf.printf "%-13s %-11s %10d %10d %14.3f\n"
            (Generators.name kind) (Strategy.name strategy)
            (Schedule.depth sched) (Schedule.size sched)
            (Noise.log_success Noise.default circuit /. log 10.))
        [ Strategy.Local; Strategy.Ats; Strategy.Snake ])
    [ Generators.Random; Generators.Block_local 2 ]

let ablation_partial () =
  header "Ablation G: don't-care extension policies (partial permutations)";
  let grid = Grid.make ~rows:16 ~cols:16 in
  let n = Grid.size grid in
  let dist u v = Grid.manhattan grid u v in
  Printf.printf "%-12s %10s %14s %12s\n" "constrained" "stay" "greedy-near"
    "min-total";
  List.iter
    (fun k ->
      let mean policy =
        let depths = Array.make seeds 0. in
        for seed = 0 to seeds - 1 do
          let rng = Rng.create (8000 + seed) in
          (* k random source/destination pairs, rest don't-care. *)
          let srcs = Rng.sample_distinct rng k n in
          let dsts = Rng.sample_distinct rng k n in
          let partial = Partial_perm.make ~n (List.combine srcs dsts) in
          let sched, _ = route_partial ~policy grid partial in
          depths.(seed) <- float_of_int (Schedule.depth sched)
        done;
        Stats.mean depths
      in
      Printf.printf "%-12d %10.2f %14.2f %12.2f\n" k
        (mean Partial_perm.Stay)
        (mean (Partial_perm.Greedy_nearest dist))
        (mean (Partial_perm.Min_total dist)))
    [ 8; 32; 96 ]

let circuits () =
  header "End-to-end transpilation of the motivating workloads (6x6 grid)";
  let grid = Grid.make ~rows:6 ~cols:6 in
  let n = Grid.size grid in
  let rng = Rng.create 42 in
  let workloads =
    [ ("qft", Library.qft n);
      ("trotter-2d x3", Library.ising_trotter_2d grid ~steps:3 ~theta:0.2);
      ("random-global", Library.random_two_qubit rng ~num_qubits:n ~gates:150);
      ("random-local r2",
       Library.random_local_two_qubit rng ~grid ~radius:2 ~gates:150) ]
  in
  Printf.printf "%-15s %-7s %7s %7s %7s %9s %9s %10s\n" "circuit" "router"
    "size" "depth" "swaps" "opt-size" "opt-depth" "log10(p)";
  let transpilers =
    [ ("local", fun logical -> transpile ~strategy:Strategy.Local ~place:true grid logical);
      ("ats", fun logical -> transpile ~strategy:Strategy.Ats ~place:true grid logical);
      ("snake", fun logical -> transpile ~strategy:Strategy.Snake ~place:true grid logical);
      ("sabre",
       fun logical ->
         let initial =
           Placement.place ~graph:(Grid.graph grid)
             ~dist:(Distance.of_grid grid) logical
         in
         Sabre_lite.run_grid ~initial grid logical) ]
  in
  List.iter
    (fun (label, logical) ->
      List.iter
        (fun (router_name, run) ->
          let result = run logical in
          assert (Transpile.verify_feasible (Grid.graph grid) result);
          let optimized = Optimize.run result.physical in
          Printf.printf "%-15s %-7s %7d %7d %7d %9d %9d %10.2f\n" label
            router_name
            (Circuit.size result.physical)
            (Circuit.depth result.physical)
            (Circuit.swap_count result.physical)
            (Circuit.size optimized) (Circuit.depth optimized)
            (Noise.log_success Noise.default optimized /. log 10.))
        transpilers;
      Printf.printf "%-15s logical %6d %7d %7d\n" label
        (Circuit.size logical) (Circuit.depth logical)
        (Circuit.swap_count logical))
    workloads

(* Harvest the permutations a real transpilation asks its router to
   realize, then race the routers on exactly those instances. *)
let realistic () =
  header "Realistic workloads: permutations harvested from transpilations (8x8)";
  let grid = Grid.make ~rows:8 ~cols:8 in
  let n = Grid.size grid in
  let harvest circuit =
    let bag = ref [] in
    ignore
      (Transpile.run_grid ~on_route:(fun rho _ -> bag := rho :: !bag) grid
         circuit);
    List.rev !bag
  in
  let sources =
    [ ("qft-slices", harvest (Library.qft n));
      ("trotter-scrambled",
       (* Trotter steps from a scrambled layout: the router fixes up a
          block-local permutation before a feasible circuit. *)
       harvest
         (Circuit.map_qubits
            (fun q ->
              (Generators.generate grid (Generators.Block_local 4)
                 (Rng.create 99)).(q))
            (Library.ising_trotter_2d grid ~steps:1 ~theta:0.1)));
      ("random-circuit",
       harvest
         (Library.random_two_qubit (Rng.create 5) ~num_qubits:n ~gates:80)) ]
  in
  Printf.printf "%-18s %6s %12s %12s %12s %12s\n" "source" "perms" "local"
    "naive" "ats" "bound";
  List.iter
    (fun (label, perms) ->
      let nonzero = List.filter (fun pi -> not (Perm.is_identity pi)) perms in
      if nonzero = [] then Printf.printf "%-18s %6d (all identity)\n" label 0
      else begin
        let mean strategy =
          let depths =
            List.map
              (fun pi ->
                float_of_int
                  (Schedule.depth (Strategy.route strategy grid pi)))
              nonzero
          in
          Stats.mean (Array.of_list depths)
        in
        let bound =
          Stats.mean
            (Array.of_list
               (List.map
                  (fun pi -> float_of_int (Bounds.depth_lower_bound grid pi))
                  nonzero))
        in
        Printf.printf "%-18s %6d %12.2f %12.2f %12.2f %12.2f\n" label
          (List.length nonzero) (mean Strategy.Local) (mean Strategy.Naive)
          (mean Strategy.Ats) bound
      end)
    sources

let ablation_rounds () =
  header "Ablation H: where the depth goes (3-round breakdown, 16x16)";
  let grid = Grid.make ~rows:16 ~cols:16 in
  Printf.printf "%-13s %-8s %8s %8s %8s\n" "workload" "sigmas" "round1"
    "round2" "round3";
  List.iter
    (fun kind ->
      let pi = Generators.generate grid kind (Rng.create 9000) in
      List.iter
        (fun (label, sigmas) ->
          let r1, r2, r3 = Grid_route.round_depths grid pi sigmas in
          Printf.printf "%-13s %-8s %8d %8d %8d\n" (Generators.name kind)
            label r1 r2 r3)
        [ ("local", Local_grid_route.sigmas grid pi);
          ("naive", Grid_route.naive_sigmas grid pi) ])
    (Generators.paper_kinds grid)

let ablations () =
  workload_characterization ();
  ablation_discovery_assignment ();
  ablation_rounds ();
  ablation_transpose ();
  ablation_compaction ();
  ablation_decompose ();
  ablation_ats_trials ();
  ablation_noise ();
  ablation_partial ()

(* ------------------------------------------------------------------ micro *)

let micro () =
  header "Bechamel micro-benchmarks (fixed 16x16 instances)";
  let open Bechamel in
  let grid = Grid.make ~rows:16 ~cols:16 in
  let g = Grid.graph grid and oracle = Distance.of_grid grid in
  let pi_random = Generators.generate grid Generators.Random (Rng.create 1) in
  let pi_block =
    Generators.generate grid (Generators.Block_local 4) (Rng.create 1)
  in
  let cg = Column_graph.build grid pi_random in
  let hk_edges = Column_graph.hk_edges cg in
  let dests = Rng.permutation (Rng.create 2) 64 in
  let tests =
    [
      (* One Test.make per figure series. *)
      Test.make ~name:"fig4+5/local/random"
        (Staged.stage (fun () -> Strategy.route Strategy.Local grid pi_random));
      Test.make ~name:"fig4+5/naive/random"
        (Staged.stage (fun () -> Strategy.route Strategy.Naive grid pi_random));
      Test.make ~name:"fig4+5/ats/random"
        (Staged.stage (fun () -> Parallel_ats.route ~trials:1 g oracle pi_random));
      Test.make ~name:"fig4+5/local/block"
        (Staged.stage (fun () -> Strategy.route Strategy.Local grid pi_block));
      Test.make ~name:"fig4+5/ats/block"
        (Staged.stage (fun () -> Parallel_ats.route ~trials:1 g oracle pi_block));
      (* One per ablation. *)
      Test.make ~name:"ablation/decompose-extraction"
        (Staged.stage (fun () ->
             Decompose.by_extraction ~nl:16 ~nr:16 ~edges:hk_edges));
      Test.make ~name:"ablation/decompose-euler"
        (Staged.stage (fun () ->
             Decompose.by_euler_split ~nl:16 ~nr:16 ~edges:hk_edges));
      Test.make ~name:"ablation/mcbbm-assignment"
        (Staged.stage (fun () ->
             let matchings =
               Local_grid_route.discover_matchings Local_grid_route.Doubling cg
             in
             Local_grid_route.assign_rows Local_grid_route.Mcbbm cg matchings));
      (* Substrate primitives. *)
      Test.make ~name:"substrate/hopcroft-karp"
        (Staged.stage (fun () ->
             Hopcroft_karp.solve ~nl:16 ~nr:16 ~edges:hk_edges));
      Test.make ~name:"substrate/odd-even-path-64"
        (Staged.stage (fun () -> Path_route.route dests));
    ]
  in
  let cfg =
    Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:None ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let raw =
    Benchmark.all cfg instances
      (Test.make_grouped ~name:"qroute" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let nanos =
          match Analyze.OLS.estimates ols_result with
          | Some (estimate :: _) -> estimate
          | _ -> nan
        in
        (name, nanos) :: acc)
      results []
  in
  Printf.printf "%-40s %16s\n" "benchmark" "ns/run";
  List.iter
    (fun (name, nanos) -> Printf.printf "%-40s %16.0f\n" name nanos)
    (List.sort compare rows)

let parse_sides s =
  match
    String.split_on_char ',' s |> List.map String.trim
    |> List.map int_of_string_opt
  with
  | sides
    when List.for_all (function Some k -> k > 0 | None -> false) sides
         && sides <> [] ->
      List.map Option.get sides
  | _ ->
      Printf.eprintf "bad sides %S; using defaults\n" s;
      default_sides

let () =
  let mode = if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" in
  let sides =
    if Array.length Sys.argv > 2 then parse_sides Sys.argv.(2)
    else default_sides
  in
  match mode with
  | "fig4" -> fig4 sides
  | "fig5" -> fig5 sides
  | "phases" -> phases sides
  | "parallel" -> parallel ()
  | "overload" -> overload ()
  | "evloop" -> evloop ()
  | "ablation" -> ablations ()
  | "circuits" -> circuits ()
  | "realistic" -> realistic ()
  | "micro" -> micro ()
  | "all" ->
      fig4 sides;
      fig5 sides;
      phases sides;
      parallel ();
      overload ();
      evloop ();
      ablations ();
      circuits ();
      realistic ();
      micro ()
  | other ->
      Printf.eprintf "unknown mode %S (expected fig4|fig5|phases|parallel|overload|evloop|ablation|circuits|realistic|micro|all)\n"
        other;
      exit 1
