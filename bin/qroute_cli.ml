(* qroute: command-line front-end for the routing stack.

   Subcommands:
     route      route one permutation on a grid and report depth/size
     sweep      sweep grid sizes and workloads, printing a depth/time table
     transpile  transpile a QASM-subset circuit file onto a grid
     gen        emit a stock circuit in the QASM-subset format
     stats      describe a workload permutation
     engines    list the registered routing engines
     serve      long-lived routing service (NDJSON over stdio or a socket)
     request    one-shot client for a running serve --socket instance

   Engines come from the central registry — anything registered (including
   by a third-party library linked into a custom build) is addressable by
   name, with no CLI change needed. *)

open Qroute
open Cmdliner

(* Referencing only module aliases never forces the umbrella unit's
   initializer, so complete the registry explicitly (idempotent). *)
let () = Token_engines.register ()

(* Chaos plans arm through the environment (QR_FAULTS / QR_FAULTS_SEED),
   so the CI harness can fault-inject a release binary without flags. *)
let () =
  match Fault.arm_from_env () with
  | Ok _ -> ()
  | Error msg ->
      Printf.eprintf "error: bad %s: %s\n" Fault.env_var msg;
      exit 2

let engine_conv =
  let parse s =
    match Router_registry.find s with
    | Some engine -> Ok engine
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown engine %S (registered: %s)" s
               (String.concat ", " (Router_registry.names ()))))
  in
  Arg.conv
    ( parse,
      fun fmt e -> Format.pp_print_string fmt e.Router_intf.name )

let config_conv =
  let parse s =
    match Router_config.of_string s with
    | Ok config -> Ok config
    | Error msg -> Error (`Msg ("bad --config: " ^ msg))
  in
  Arg.conv (parse, Router_config.pp)

let config_arg =
  Arg.(
    value
    & opt config_conv Router_config.default
    & info [ "config" ] ~docv:"CONFIG"
        ~doc:
          "Router configuration as comma-separated key=value pairs, e.g.            $(b,discovery=whole,transpose=off).  Keys: discovery (doubling,            whole, fixed:<h>), assignment (mcbbm, arbitrary), transpose,            compaction (on/off), trials, seed, best (name+name).")

let kind_conv =
  let parse s =
    match Generators.of_name s with
    | Some kind -> Ok kind
    | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown workload %S (try: random, block:4, overlap:4x32, \
                skinny:8, reversal, rowshift:1, colshift:1, mirror, identity)"
               s))
  in
  Arg.conv (parse, fun fmt k -> Format.pp_print_string fmt (Generators.name k))

let rows_arg =
  Arg.(value & opt int 8 & info [ "rows"; "m" ] ~docv:"M" ~doc:"Grid rows.")

let cols_arg =
  Arg.(value & opt int 8 & info [ "cols"; "n" ] ~docv:"N" ~doc:"Grid columns.")

let seed_arg =
  Arg.(value & opt int 0 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

let strategy_arg =
  Arg.(
    value
    & opt engine_conv (Router_registry.get "best")
    & info [ "strategy"; "s" ] ~docv:"ENGINE"
        ~doc:
          "Routing engine by registry name (see $(b,qroute engines) for            the list).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record per-phase spans and write a Chrome trace_event JSON file \
           to $(docv) (load it in chrome://tracing or Perfetto); also \
           prints a per-phase cost summary.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Record routing counters/gauges/histograms and write a JSON \
           snapshot to $(docv).")

(* Bracket a run with span/metric collection when either sink is
   requested; export afterwards.  With neither flag the run stays on the
   no-op fast path. *)
let with_observability ~trace ~metrics f =
  let observing = trace <> None || metrics <> None in
  if observing then begin
    Trace.start ();
    Metrics.reset ();
    Metrics.enable ()
  end;
  let write_failed = ref false in
  let write path json =
    try
      Out_channel.with_open_text path (fun oc -> Obs_json.to_channel oc json);
      true
    with Sys_error msg ->
      Printf.eprintf "error: cannot write %s: %s\n" path msg;
      write_failed := true;
      false
  in
  let finish () =
    if observing then begin
      let spans = Trace.stop () in
      Metrics.disable ();
      Option.iter
        (fun path ->
          if write path (Trace.to_chrome_json spans) then begin
            Printf.printf "\nper-phase cost summary:\n%s"
              (Trace.summary_table spans);
            Printf.printf "trace (%d spans) written to %s\n"
              (List.length spans) path
          end)
        trace;
      Option.iter
        (fun path ->
          if write path (Metrics.to_json ()) then
            Printf.printf "metrics written to %s\n" path)
        metrics
    end
  in
  let result = Fun.protect ~finally:finish f in
  if !write_failed then exit 1;
  result

(* ------------------------------------------------------------------ route *)

let route_cmd =
  let kind =
    Arg.(
      value
      & opt kind_conv Generators.Random
      & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"Workload permutation class.")
  in
  let show =
    Arg.(value & flag & info [ "show" ] ~doc:"Print the matching layers.")
  in
  let run rows cols seed engine config kind show trace metrics =
    with_observability ~trace ~metrics @@ fun () ->
    let grid = Grid.make ~rows ~cols in
    let pi = Generators.generate grid kind (Rng.create seed) in
    let (sched, seconds) =
      Timer.time (fun () -> Router_intf.route_grid ~config engine grid pi)
    in
    assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
    Printf.printf "grid %dx%d  workload %s  strategy %s\n" rows cols
      (Generators.name kind) engine.Router_intf.name;
    Printf.printf
      "depth %d  swaps %d  displacement-bound %d  time %.6fs\n"
      (Schedule.depth sched) (Schedule.size sched)
      (Perm.max_distance (fun u v -> Grid.manhattan grid u v) pi)
      seconds;
    if show then begin
      Printf.printf "\ndestinations (* = displaced):\n%s"
        (Viz.permutation_ascii grid pi);
      Printf.printf "\nschedule:\n%s" (Viz.schedule_ascii grid sched);
      Printf.printf "\nswap activity per vertex:\n%s"
        (Viz.occupancy_ascii grid sched)
    end
  in
  Cmd.v
    (Cmd.info "route" ~doc:"Route one permutation on a grid")
    Term.(
      const run $ rows_arg $ cols_arg $ seed_arg $ strategy_arg $ config_arg
      $ kind $ show $ trace_arg $ metrics_arg)

(* ------------------------------------------------------------------ sweep *)

let sweep_cmd =
  let sizes =
    Arg.(
      value
      & opt (list int) [ 4; 8; 12; 16 ]
      & info [ "sizes" ] ~docv:"N,..." ~doc:"Square grid side lengths.")
  in
  let seeds =
    Arg.(value & opt int 3 & info [ "seeds" ] ~docv:"K" ~doc:"Seeds per point.")
  in
  let engines_arg =
    Arg.(
      value
      & opt (some (list engine_conv)) None
      & info [ "engines" ] ~docv:"NAME,..."
          ~doc:
            "Engines to sweep (default: the whole registry).")
  in
  let run sizes seeds engines config trace metrics =
    with_observability ~trace ~metrics @@ fun () ->
    let engines =
      match engines with Some e -> e | None -> Router_registry.all ()
    in
    Printf.printf "%-6s %-12s %-11s %8s %8s %10s\n" "grid" "workload"
      "strategy" "depth" "swaps" "time(s)";
    List.iter
      (fun side ->
        let grid = Grid.make ~rows:side ~cols:side in
        List.iter
          (fun kind ->
            List.iter
              (fun engine ->
                let depths = ref [] and times = ref [] in
                for seed = 0 to seeds - 1 do
                  let pi = Generators.generate grid kind (Rng.create seed) in
                  let (sched, seconds) =
                    Timer.time (fun () ->
                        Router_intf.route_grid ~config engine grid pi)
                  in
                  depths := float_of_int (Schedule.depth sched) :: !depths;
                  times := seconds :: !times
                done;
                Printf.printf "%-6s %-12s %-11s %8.1f %8s %10.5f\n"
                  (Printf.sprintf "%dx%d" side side)
                  (Generators.name kind) engine.Router_intf.name
                  (Stats.mean (Array.of_list !depths))
                  "-"
                  (Stats.mean (Array.of_list !times)))
              engines)
          (Generators.paper_kinds grid))
      sizes
  in
  Cmd.v
    (Cmd.info "sweep" ~doc:"Depth/time sweep over grid sizes and workloads")
    Term.(
      const run $ sizes $ seeds $ engines_arg $ config_arg $ trace_arg
      $ metrics_arg)

(* -------------------------------------------------------------- transpile *)

let transpile_cmd =
  let input =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Input circuit (QASM subset).")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"OUT" ~doc:"Write the physical circuit here.")
  in
  let run rows cols engine config input output trace metrics =
    let grid = Grid.make ~rows ~cols in
    match Qasm.load input with
    | Error msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Ok logical ->
        if Circuit.num_qubits logical <> Grid.size grid then begin
          Printf.eprintf
            "error: circuit has %d qubits but the %dx%d grid has %d vertices\n"
            (Circuit.num_qubits logical) rows cols (Grid.size grid);
          exit 1
        end;
        with_observability ~trace ~metrics @@ fun () ->
        let (result, seconds) =
          Timer.time (fun () ->
              Transpile.run_grid ~engine ~config grid logical)
        in
        assert (Transpile.verify_feasible (Grid.graph grid) result);
        Printf.printf
          "logical:  size %d  depth %d  two-qubit %d\n"
          (Circuit.size logical) (Circuit.depth logical)
          (Circuit.two_qubit_count logical);
        Printf.printf
          "physical: size %d  depth %d  swaps %d  routed-slices %d  \
           swap-layers %d  time %.4fs\n"
          (Circuit.size result.physical)
          (Circuit.depth result.physical)
          (Circuit.swap_count result.physical)
          result.routed_slices result.swap_layers seconds;
        Option.iter (fun path -> Qasm.save path result.physical) output
  in
  Cmd.v
    (Cmd.info "transpile" ~doc:"Transpile a circuit file onto a grid")
    Term.(
      const run $ rows_arg $ cols_arg $ strategy_arg $ config_arg $ input
      $ output $ trace_arg $ metrics_arg)

(* -------------------------------------------------------------------- gen *)

let gen_cmd =
  let which =
    Arg.(
      required
      & pos 0 (some (enum [ ("qft", `Qft); ("ghz", `Ghz); ("ising", `Ising);
                            ("random", `Random) ])) None
      & info [] ~docv:"KIND" ~doc:"Circuit family: qft, ghz, ising, random.")
  in
  let gates =
    Arg.(value & opt int 64 & info [ "gates" ] ~docv:"G"
           ~doc:"Gate count for random circuits.")
  in
  let run rows cols seed which gates =
    let grid = Grid.make ~rows ~cols in
    let n = Grid.size grid in
    let circuit =
      match which with
      | `Qft -> Library.qft n
      | `Ghz -> Library.ghz n
      | `Ising -> Library.ising_trotter_2d grid ~steps:1 ~theta:0.1
      | `Random -> Library.random_two_qubit (Rng.create seed) ~num_qubits:n ~gates
    in
    print_string (Qasm.print circuit)
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Emit a stock circuit in the QASM subset")
    Term.(const run $ rows_arg $ cols_arg $ seed_arg $ which $ gates)

(* ------------------------------------------------------------------ stats *)

let stats_cmd =
  let kind =
    Arg.(
      value
      & opt kind_conv Generators.Random
      & info [ "kind"; "k" ] ~docv:"KIND" ~doc:"Workload permutation class.")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:
            "Instead of describing a workload, poll a running $(b,serve \
             --socket) instance's $(b,stats) method and print its one-call \
             operational snapshot (health + plan cache + metrics) as \
             JSON.")
  in
  let run rows cols seed kind socket =
    match socket with
    | Some path -> (
        let request =
          Server_protocol.request ~id:(Obs_json.String "stats") ~meth:"stats"
            (Obs_json.Obj [])
        in
        match Server_client.rpc ~path request with
        | Error msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | Ok response -> (
            match Server_protocol.response_result response with
            | Ok result -> print_endline (Obs_json.to_string result)
            | Error err ->
                Printf.eprintf "error: %s: %s\n"
                  (Server_protocol.code_to_string err.Server_protocol.code)
                  err.Server_protocol.message;
                exit 3))
    | None ->
        let grid = Grid.make ~rows ~cols in
        let pi = Generators.generate grid kind (Rng.create seed) in
        Format.printf "workload %s on %dx%d:@.%a@." (Generators.name kind)
          rows cols Perm_stats.pp
          (Perm_stats.compute grid pi);
        let histogram = Perm_stats.displacement_histogram grid pi in
        Format.printf "displacement histogram:@.";
        Array.iteri
          (fun d count ->
            if count > 0 then Format.printf "  d=%d: %d@." d count)
          histogram;
        Format.printf "depth lower bound: %d@."
          (Bounds.depth_lower_bound grid pi)
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Describe a workload permutation, or snapshot a running server's \
          telemetry")
    Term.(const run $ rows_arg $ cols_arg $ seed_arg $ kind $ socket)

(* ---------------------------------------------------------------- engines *)

let engines_cmd =
  let names_only =
    Arg.(
      value & flag
      & info [ "names" ]
          ~doc:"Print bare engine names, one per line (for scripting).")
  in
  let json =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the registry as JSON (name and capabilities) — the same \
             document the service's $(b,engines) method returns.")
  in
  let run names_only json =
    if json then
      print_endline (Obs_json.to_string (Server_protocol.engines_json ()))
    else if names_only then
      List.iter print_endline (Router_registry.names ())
    else begin
      Printf.printf "%-11s %-8s %-10s %-8s\n" "engine" "inputs" "transpose"
        "partial";
      List.iter
        (fun e ->
          let caps = e.Router_intf.capabilities in
          Printf.printf "%-11s %-8s %-10s %-8s\n" e.Router_intf.name
            (if caps.Router_intf.grid_only then "grid" else "any")
            (if caps.Router_intf.supports_transpose then "yes" else "no")
            (if caps.Router_intf.supports_partial then "yes" else "no"))
        (Router_registry.all ())
    end
  in
  Cmd.v
    (Cmd.info "engines" ~doc:"List the registered routing engines")
    Term.(const run $ names_only $ json)

(* ------------------------------------------------------------------ serve *)

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Serve a Unix-domain socket at $(docv).")

(* Telemetry knobs shared by the serving modes (DESIGN.md §12). *)

let log_level_conv =
  let parse s =
    match Log.level_of_string s with
    | Ok l -> Ok l
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv (parse, fun fmt l -> Format.pp_print_string fmt (Log.level_name l))

let log_format_conv =
  let parse s =
    match Log.format_of_string s with
    | Ok f -> Ok f
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv
    ( parse,
      fun fmt f ->
        Format.pp_print_string fmt
          (match f with Log.Logfmt -> "logfmt" | Log.Json -> "json") )

let log_level_arg ~default =
  Arg.(
    value & opt log_level_conv default
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Structured-log threshold on stderr: debug, info, warn or error.  \
           At $(b,info) every request gets an access-log record (method, \
           status, bytes, ms, trace_id, cache outcome).")

let log_format_arg =
  Arg.(
    value & opt log_format_conv Log.Logfmt
    & info [ "log-format" ] ~docv:"FMT"
        ~doc:"Structured-log record shape: logfmt or json (one per line).")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-file" ] ~docv:"PATH"
        ~doc:
          "Write the Prometheus text exposition to $(docv) (atomic \
           tmp+rename) about every 2 seconds and at shutdown — file-based \
           scraping without an HTTP listener.")

let serve_cmd =
  let stdio =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:
            "Serve newline-delimited JSON on stdin/stdout (one request per \
             line, one response per line).")
  in
  let cache_capacity =
    Arg.(
      value & opt int Server_session.default_config.cache_capacity
      & info [ "cache-capacity" ] ~docv:"N"
          ~doc:"Plan-cache entries kept (LRU); 0 disables caching.")
  in
  let max_batch =
    Arg.(
      value & opt int Server_session.default_config.max_batch
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Largest accepted route_batch; bigger batches get the \
             $(b,overloaded) error.")
  in
  let max_inflight =
    Arg.(
      value & opt int Server_session.default_config.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:
            "Pipelined requests queued per poll cycle before shedding with \
             $(b,overloaded) (socket mode).")
  in
  let verify =
    Arg.(
      value & flag
      & info [ "verify-schedules" ]
          ~doc:
            "Check every schedule (fresh or cached) against the routing \
             invariant before responding; a failing engine degrades through \
             the fallback chain and corrupted cache entries are evicted and \
             replanned.  Failures surface in the $(b,health) report and the \
             $(b,router_verify_failures) / $(b,router_degraded) metrics.")
  in
  let error_budget =
    Arg.(
      value & opt int Server_session.default_config.error_budget
      & info [ "error-budget" ] ~docv:"N"
          ~doc:
            "Consecutive error responses a connection may accumulate before \
             the socket server closes it; 0 disables shedding.")
  in
  let workers =
    Arg.(
      value & opt int 1
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Worker domains serving requests (socket mode).  1 (default) \
             keeps the single-threaded event loop; N > 1 runs requests on a \
             pool of N domains, with per-connection response order \
             preserved and route_batch items fanned across the pool.")
  in
  let max_line_bytes =
    Arg.(
      value & opt int Server_session.default_config.max_line_bytes
      & info [ "max-line-bytes" ] ~docv:"N"
          ~doc:
            "Largest request line (or buffered partial line) a connection \
             may send; past it the server replies $(b,invalid_request) and \
             closes the connection.")
  in
  let max_outbox_bytes =
    Arg.(
      value & opt int Server_session.default_config.max_outbox_bytes
      & info [ "max-outbox-bytes" ] ~docv:"N"
          ~doc:
            "Response bytes queued for a connection whose client is not \
             reading; past it the connection is closed \
             ($(b,server_slow_client_closes)).  A stalled reader only ever \
             blocks itself — the readiness loop keeps serving everyone \
             else.")
  in
  let hung_request_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "hung-request-ms" ] ~docv:"MS"
          ~doc:
            "Watchdog budget (pool mode): a request running longer is \
             cancelled cooperatively; a worker that then stops making \
             progress is declared lost, its client gets \
             $(b,internal_error), and the domain is respawned \
             ($(b,server_hung_requests), $(b,server_worker_restarts)).")
  in
  let queue_delay_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "queue-delay-ms" ] ~docv:"MS"
          ~doc:
            "Adaptive admission target (pool mode): when the measured queue \
             delay EWMA exceeds $(docv), new requests are shed with \
             $(b,overloaded) plus a $(b,retry_after_ms) hint.")
  in
  let max_rss_mb =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-rss-mb" ] ~docv:"MB"
          ~doc:
            "Memory brownout threshold: past this max-RSS high-water mark \
             the plan cache is shrunk and batch requests rejected.")
  in
  let breaker_threshold =
    Arg.(
      value & opt int 0
      & info [ "breaker-threshold" ] ~docv:"N"
          ~doc:
            "Trip an engine's circuit breaker open after $(docv) failures \
             in its rolling outcome window (requires \
             $(b,--verify-schedules); 0 disables breakers).")
  in
  let breaker_cooldown_ms =
    Arg.(
      value & opt int 2000
      & info [ "breaker-cooldown-ms" ] ~docv:"MS"
          ~doc:
            "How long a tripped breaker stays open before admitting \
             half-open probe requests.")
  in
  let run stdio socket workers cache_capacity max_batch max_inflight verify
      error_budget max_line_bytes max_outbox_bytes hung_request_ms
      queue_delay_ms max_rss_mb breaker_threshold breaker_cooldown_ms
      metrics_file log_level log_format =
    let breaker =
      if breaker_threshold <= 0 then None
      else
        Some
          {
            Qr_route.Breaker.default_config with
            Qr_route.Breaker.threshold = breaker_threshold;
            window = max Qr_route.Breaker.default_config.window breaker_threshold;
            cooldown_ns = Int64.mul (Int64.of_int (max 1 breaker_cooldown_ms)) 1_000_000L;
          }
    in
    let config =
      {
        Server_session.cache_capacity;
        max_batch;
        max_inflight;
        verify;
        error_budget;
        max_line_bytes;
        max_outbox_bytes;
        hung_request_ms;
        queue_delay_target_ms = queue_delay_ms;
        max_rss_mb;
        breaker;
      }
    in
    (* Server mode raises the default level to Info: access logs go to
       stderr while NDJSON responses own stdout. *)
    Log.set_level log_level;
    Log.set_format log_format;
    if workers < 1 then begin
      Printf.eprintf "error: --workers must be at least 1\n";
      exit 2
    end;
    match (stdio, socket) with
    | true, Some _ ->
        Printf.eprintf "error: --stdio and --socket are mutually exclusive\n";
        exit 2
    | true, None ->
        if workers > 1 then begin
          Printf.eprintf "error: --workers requires --socket\n";
          exit 2
        end;
        Server.run_stdio ~config ?metrics_file ()
    | false, Some path -> (
        try Server.run_socket ~config ?metrics_file ~workers ~path () with
        | Failure msg ->
            Printf.eprintf "error: %s\n" msg;
            exit 1
        | Unix.Unix_error (err, fn, _) ->
            Printf.eprintf "error: %s: %s\n" fn (Unix.error_message err);
            exit 1)
    | false, None ->
        Printf.eprintf "error: pass --stdio or --socket PATH\n";
        exit 2
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve routing requests over newline-delimited JSON"
       ~man:
         [
           `S Manpage.s_description;
           `P
             "Long-lived routing service: one JSON request per line, one \
              response per line.  Methods: route, route_batch, transpile, \
              engines, health, metrics, stats.  Repeated identical route \
              requests are answered from an LRU plan cache; per-request \
              $(b,deadline_ms) budgets return $(b,deadline_exceeded) \
              errors instead of stalling the connection.  SIGINT/SIGTERM \
              drain gracefully.  See DESIGN.md \xC2\xA710 for the wire \
              protocol, \xC2\xA711 for the fault model \
              ($(b,--verify-schedules), $(b,QR_FAULTS)) and \xC2\xA712 for \
              the telemetry plane ($(b,--metrics-file), access logs, \
              trace propagation).";
         ])
    Term.(
      const run $ stdio $ socket_arg $ workers $ cache_capacity $ max_batch
      $ max_inflight $ verify $ error_budget $ max_line_bytes
      $ max_outbox_bytes $ hung_request_ms $ queue_delay_ms $ max_rss_mb
      $ breaker_threshold
      $ breaker_cooldown_ms $ metrics_file_arg
      $ log_level_arg ~default:Log.Info $ log_format_arg)

(* ---------------------------------------------------------------- request *)

let request_cmd =
  let meth =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"METHOD"
          ~doc:
            "Method to call: route, route_batch, transpile, engines, \
             health, metrics, stats.")
  in
  let params =
    Arg.(
      value & opt string "{}"
      & info [ "params" ] ~docv:"JSON" ~doc:"Parameters as a JSON object.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS" ~doc:"Per-request time budget.")
  in
  let id =
    Arg.(
      value & opt string "cli"
      & info [ "id" ] ~docv:"ID" ~doc:"Request id echoed in the response.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"N"
          ~doc:
            "Retry transport failures and $(b,overloaded) responses up to \
             $(docv) extra times with jittered backoff (typed request \
             errors are never retried).  Retries bump the \
             $(b,client_retries) metric.")
  in
  let traceparent =
    Arg.(
      value
      & opt (some string) None
      & info [ "traceparent" ] ~docv:"TP"
          ~doc:
            "Forward an existing trace context \
             (00-<trace_id>-<parent_id>-01) instead of minting one; the \
             server adopts its trace_id for every span and access-log \
             record of the request, and the response echoes it.")
  in
  let run socket meth params deadline_ms id retries traceparent =
    let path =
      match socket with
      | Some path -> path
      | None ->
          Printf.eprintf "error: --socket PATH is required\n";
          exit 2
    in
    let params =
      match Obs_json.of_string params with
      | Ok (Obs_json.Obj _ as p) -> p
      | Ok _ ->
          Printf.eprintf "error: --params must be a JSON object\n";
          exit 2
      | Error msg ->
          Printf.eprintf "error: bad --params: %s\n" msg;
          exit 2
    in
    let trace =
      match traceparent with
      | None -> None
      | Some tp -> (
          match Trace_context.of_traceparent tp with
          | Ok t -> Some t
          | Error msg ->
              Printf.eprintf "error: bad --traceparent: %s\n" msg;
              exit 2)
    in
    let request =
      Server_protocol.request ~id:(Obs_json.String id) ?deadline_ms ?trace
        ~meth params
    in
    let retry =
      { Server_client.default_retry with attempts = 1 + max 0 retries }
    in
    match Server_client.rpc_retry ~retry ~path request with
    | Server_client.Transport_failure msg ->
        Printf.eprintf "error: %s\n" msg;
        exit 1
    | Server_client.Response response ->
        print_endline (Obs_json.to_string response)
    | Server_client.Server_error (_, response) ->
        print_endline (Obs_json.to_string response);
        exit 3
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send one request to a running serve --socket instance"
       ~exits:
         [
           Cmd.Exit.info 0 ~doc:"the server returned a result";
           Cmd.Exit.info 1
             ~doc:
               "transport failure: could not connect, send, or read a \
                response (after any $(b,--retries))";
           Cmd.Exit.info 2 ~doc:"bad command line";
           Cmd.Exit.info 3
             ~doc:
               "the server answered with a typed error envelope (printed \
                on stdout), e.g. $(b,deadline_exceeded) or \
                $(b,invalid_params)";
         ])
    Term.(
      const run $ socket_arg $ meth $ params $ deadline_ms $ id $ retries
      $ traceparent)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "qroute" ~version:"1.0.0"
             ~doc:"Locality-aware qubit routing for grid architectures")
          [ route_cmd; sweep_cmd; transpile_cmd; gen_cmd; stats_cmd;
            engines_cmd; serve_cmd; request_cmd ]))
