(* Simulating a spatially local Hamiltonian — the workload family the paper
   singles out as benefiting from locality-aware routing.

   A Trotter step of the transverse-field Ising model on the grid interacts
   only grid-neighbours, so the circuit itself is feasible.  Routing
   pressure appears when the transpiler starts from a *scrambled* layout
   (e.g. handed over from an earlier program phase): the router must bring
   qubits home, and the required permutation is exactly as local as the
   scrambling.  This example measures how the locality of that layout
   scrambling drives routing cost for each router.

   Run with:  dune exec examples/trotter_local.exe *)

open Qroute

let () =
  let grid = Grid.make ~rows:6 ~cols:6 in
  let n = Grid.size grid in
  let logical = Library.ising_trotter_2d grid ~steps:3 ~theta:0.2 in
  Printf.printf "Trotter circuit: %d qubits, %d gates, depth %d\n\n" n
    (Circuit.size logical) (Circuit.depth logical);

  Printf.printf "%-22s %-8s %8s %8s\n" "initial-layout class" "router" "swaps"
    "depth";
  let scramblings =
    [ ("identity (in place)", Generators.Identity);
      ("block-local 2x2", Generators.Block_local 2);
      ("block-local 3x3", Generators.Block_local 3);
      ("uniformly random", Generators.Random) ]
  in
  List.iter
    (fun (label, kind) ->
      let scramble = Generators.generate grid kind (Rng.create 1) in
      let initial = Layout.of_phys_of_logical scramble in
      List.iter
        (fun strategy ->
          let result = transpile ~strategy ~initial grid logical in
          assert (Transpile.verify_feasible (Grid.graph grid) result);
          Printf.printf "%-22s %-8s %8d %8d\n" label (Strategy.name strategy)
            (Circuit.swap_count result.physical)
            (Circuit.depth result.physical))
        [ Strategy.Local; Strategy.Ats ])
    scramblings;

  (* The point the paper's intro makes: the more local the permutation the
     router faces, the cheaper the fix-up — and the locality-aware router
     exploits it.  Verify one scrambled case end-to-end on a smaller grid
     where exact simulation is tractable. *)
  let small = Grid.make ~rows:2 ~cols:4 in
  let logical_small = Library.ising_trotter_2d small ~steps:2 ~theta:0.2 in
  let initial =
    Layout.of_phys_of_logical
      (Generators.generate small (Generators.Block_local 2) (Rng.create 3))
  in
  let result = transpile ~initial small logical_small in
  let psi = Statevector.random_state (Rng.create 9) 8 in
  let out_logical = Statevector.run logical_small psi in
  let placed = Statevector.permute_qubits psi (Layout.to_phys_array initial) in
  let out_physical = Statevector.run result.physical placed in
  let read_back =
    Statevector.permute_qubits out_physical
      (Array.init 8 (fun v -> Layout.logical result.final v))
  in
  Printf.printf "\n2x4 exact check, fidelity (must be 1.0): %.12f\n"
    (Statevector.fidelity out_logical read_back)
