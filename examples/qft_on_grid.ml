(* Transpile the quantum Fourier transform onto a 3x3 grid and verify the
   result exactly against a statevector simulation.

   The QFT is the paper's running example of routing pressure: it couples
   every qubit pair, so on a sparse grid nearly every slice needs SWAPs.

   Run with:  dune exec examples/qft_on_grid.exe *)

open Qroute

let report label circuit =
  Printf.printf "%-9s size %3d   depth %3d   two-qubit %3d   swaps %3d\n"
    label (Circuit.size circuit) (Circuit.depth circuit)
    (Circuit.two_qubit_count circuit)
    (Circuit.swap_count circuit)

let () =
  let grid = Grid.make ~rows:3 ~cols:3 in
  let logical = Library.qft (Grid.size grid) in
  report "logical" logical;

  (* Transpile with each routing strategy and compare the inflation. *)
  List.iter
    (fun strategy ->
      let result = transpile ~strategy grid logical in
      assert (Transpile.verify_feasible (Grid.graph grid) result);
      report (Strategy.name strategy) result.physical)
    [ Strategy.Local; Strategy.Naive; Strategy.Ats ];

  (* Exact verification: the physical circuit, run from a random state
     placed by the initial layout and read back through the final layout,
     must match the logical circuit on the nose. *)
  let result = transpile grid logical in
  let n = Grid.size grid in
  let psi = Statevector.random_state (Rng.create 7) n in
  let out_logical = Statevector.run logical psi in
  let placed = Statevector.permute_qubits psi (Layout.to_phys_array result.initial) in
  let out_physical = Statevector.run result.physical placed in
  let read_back =
    Statevector.permute_qubits out_physical
      (Array.init n (fun v -> Layout.logical result.final v))
  in
  Printf.printf "statevector fidelity (must be 1.0): %.12f\n"
    (Statevector.fidelity out_logical read_back);

  (* Cost in CNOTs for hardware without native SWAPs. *)
  let expanded = Circuit.expand_swaps result.physical in
  Printf.printf "after 3-CX swap expansion: size %d, depth %d\n"
    (Circuit.size expanded) (Circuit.depth expanded)
