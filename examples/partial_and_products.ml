(* Don't-care routing and "grid-like" architectures — the two
   generalizations sketched in §II and §IV-C of the paper.

   Run with:  dune exec examples/partial_and_products.exe *)

open Qroute

let () =
  (* --- Part 1: partial permutations -------------------------------- *)
  (* Only two qubits have required destinations (say, the next gate needs
     them adjacent in the far corner); everything else is a don't-care. *)
  let grid = Grid.make ~rows:6 ~cols:6 in
  let n = Grid.size grid in
  let partial =
    Partial_perm.make ~n
      [ (Grid.index grid 0 0, Grid.index grid 5 4);
        (Grid.index grid 0 1, Grid.index grid 5 5) ]
  in
  Printf.printf "constrained qubits: %d of %d\n" (Partial_perm.constrained partial) n;
  let dist u v = Grid.manhattan grid u v in
  List.iter
    (fun (label, policy) ->
      let sched, extension = route_partial ~policy grid partial in
      Printf.printf
        "%-14s depth %2d  swaps %3d  collateral displacement %3d\n" label
        (Schedule.depth sched) (Schedule.size sched)
        (Partial_perm.total_distance dist partial extension))
    [ ("stay", Partial_perm.Stay);
      ("greedy", Partial_perm.Greedy_nearest dist);
      ("min-total", Partial_perm.Min_total dist) ];

  (* --- Part 2: Cartesian products ---------------------------------- *)
  (* A cylinder (cycle x path) — superconducting layouts with a ring bus.
     The same 3-round scheme routes it once we supply per-factor routers:
     odd-even for the path factor, parallel token swapping for the cycle. *)
  print_newline ();
  let cylinder = Product.make (Graph.cycle 6) (Graph.path 5) in
  let path_router g pi =
    List.map Array.of_list (Path_route.route_min_parity pi)
    |> fun layers ->
    assert (Graph.num_vertices g = Array.length pi);
    layers
  in
  let cycle_router g pi =
    Parallel_ats.route ~trials:1 g (Distance.of_graph g) pi
  in
  let pi =
    Perm.check (Rng.permutation (Rng.create 3) (Product.size cylinder))
  in
  let sched =
    Product_route.route ~route1:cycle_router ~route2:path_router cylinder pi
  in
  assert (Schedule.is_valid (Product.graph cylinder) sched);
  assert (Schedule.realizes ~n:(Product.size cylinder) sched pi);
  Printf.printf "cylinder C6 x P5: random permutation routed in depth %d (%d swaps)\n"
    (Schedule.depth sched) (Schedule.size sched);

  (* Reference point: the same instance on a plain 6x5 grid, handled by
     the specialized (and more optimized) grid router.  The generic product
     router pays for its generality — specializing the factor routers is
     exactly what the paper's grid algorithm does. *)
  let as_grid = Grid.make ~rows:6 ~cols:5 in
  let grid_sched = route as_grid pi in
  Printf.printf
    "same permutation, 6x5 grid, specialized router: depth %d (%d swaps)\n"
    (Schedule.depth grid_sched)
    (Schedule.size grid_sched);

  (* --- Part 3: how local is a workload? ----------------------------- *)
  print_newline ();
  let workloads = Generators.paper_kinds grid in
  List.iter
    (fun kind ->
      let sample = Generators.generate grid kind (Rng.create 1) in
      let stats = Perm_stats.compute grid sample in
      Format.printf "%-13s %a@." (Generators.name kind) Perm_stats.pp stats)
    workloads
