(* Head-to-head router comparison across the paper's workload classes —
   a miniature of Figure 4 that runs in seconds.  The engine set comes
   from the central registry, so anything registered is compared.

   Run with:  dune exec examples/compare_routers.exe *)

open Qroute

(* Module aliases alone do not force the umbrella's initializer; complete
   the engine registry explicitly (idempotent). *)
let () = Token_engines.register ()

let side = 10
let seeds = 3

let () =
  let grid = Grid.make ~rows:side ~cols:side in
  let engines = Router_registry.all () in
  Printf.printf
    "Routing on a %dx%d grid (%d qubits), mean over %d seeds.\n\n" side side
    (Grid.size grid) seeds;
  Printf.printf "%-13s %6s" "workload" "";
  List.iter
    (fun e -> Printf.printf " %10s" e.Router_intf.name)
    engines;
  print_newline ();
  let summarize kind =
    let stats engine =
      let depths = ref [] and times = ref [] in
      for seed = 0 to seeds - 1 do
        let pi = Generators.generate grid kind (Rng.create seed) in
        let sched, seconds =
          Timer.time (fun () -> Router_intf.route_grid engine grid pi)
        in
        assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
        depths := float_of_int (Schedule.depth sched) :: !depths;
        times := seconds :: !times
      done;
      ( Stats.mean (Array.of_list !depths),
        Stats.mean (Array.of_list !times) )
    in
    let cells = List.map stats engines in
    Printf.printf "%-13s %6s" (Generators.name kind) "depth";
    List.iter (fun (d, _) -> Printf.printf " %10.1f" d) cells;
    print_newline ();
    Printf.printf "%-13s %6s" "" "time";
    List.iter (fun (_, t) -> Printf.printf " %9.4fs" t) cells;
    print_newline ()
  in
  List.iter summarize (Generators.paper_kinds grid);
  summarize Generators.Reversal;
  print_newline ();
  Printf.printf
    "Reading the table: on random permutations the locality-aware router\n\
     gives the shallowest schedules; on block-local ones all routers are\n\
     close; the time rows show the matching-based routers scaling far\n\
     better than token swapping (the paper's Figure 5).\n"
