(* Head-to-head router comparison across the paper's workload classes —
   a miniature of Figure 4 that runs in seconds.

   Run with:  dune exec examples/compare_routers.exe *)

open Qroute

let side = 10
let seeds = 3

let () =
  let grid = Grid.make ~rows:side ~cols:side in
  Printf.printf
    "Routing on a %dx%d grid (%d qubits), mean over %d seeds.\n\n" side side
    (Grid.size grid) seeds;
  Printf.printf "%-13s %9s %9s %9s | %9s %9s\n" "workload" "local" "naive"
    "ats" "t-local" "t-ats";
  let summarize kind =
    let stats strategy =
      let depths = ref [] and times = ref [] in
      for seed = 0 to seeds - 1 do
        let pi = Generators.generate grid kind (Rng.create seed) in
        let sched, seconds =
          Timer.time (fun () -> Strategy.route strategy grid pi)
        in
        assert (Schedule.realizes ~n:(Grid.size grid) sched pi);
        depths := float_of_int (Schedule.depth sched) :: !depths;
        times := seconds :: !times
      done;
      ( Stats.mean (Array.of_list !depths),
        Stats.mean (Array.of_list !times) )
    in
    let local_d, local_t = stats Strategy.Local in
    let naive_d, _ = stats Strategy.Naive in
    let ats_d, ats_t = stats Strategy.Ats in
    Printf.printf "%-13s %9.1f %9.1f %9.1f | %8.4fs %8.4fs\n"
      (Generators.name kind) local_d naive_d ats_d local_t ats_t
  in
  List.iter summarize (Generators.paper_kinds grid);
  summarize Generators.Reversal;
  print_newline ();
  Printf.printf
    "Reading the table: on random permutations the locality-aware router\n\
     gives the shallowest schedules; on block-local ones all routers are\n\
     close; the time columns show the matching-based routers scaling far\n\
     better than token swapping (the paper's Figure 5).\n"
