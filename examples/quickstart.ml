(* Quickstart: route one permutation on a grid and inspect the schedule.

   Run with:  dune exec examples/quickstart.exe *)

open Qroute

let () =
  (* A 4x4 grid device: 16 physical qubits, nearest-neighbour coupling. *)
  let grid = Grid.make ~rows:4 ~cols:4 in

  (* A permutation to realize: reverse the whole grid (every qubit must
     travel to the antipodal position — the hardest involution). *)
  let pi = Generators.generate grid Generators.Reversal (Rng.create 0) in
  Format.printf "destination map:@.%a@." (Grid_perm.pp grid) pi;

  (* Route it with the paper's locality-aware algorithm (Algorithm 1). *)
  let sched = Strategy.route Strategy.Local grid pi in
  Printf.printf "locality-aware: depth %d, %d swaps\n"
    (Schedule.depth sched) (Schedule.size sched);

  (* Every layer is a matching of the grid; the whole schedule provably
     realizes pi — check both explicitly. *)
  assert (Schedule.is_valid (Grid.graph grid) sched);
  assert (Schedule.realizes ~n:(Grid.size grid) sched pi);

  (* Watch the tokens move, layer by layer. *)
  List.iteri
    (fun step snapshot ->
      Format.printf "@.after layer %d:@.%a" step
        (Permsim.pp_grid_snapshot grid) snapshot)
    (Permsim.trace ~n:(Grid.size grid) sched);

  (* Compare against the approximate-token-swapping baseline. *)
  let ats = Strategy.route Strategy.Ats grid pi in
  Printf.printf "@.token swapping: depth %d, %d swaps\n"
    (Schedule.depth ats) (Schedule.size ats)
