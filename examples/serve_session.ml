(* A scripted client/server exchange against the routing service.

   The whole wire protocol is exercised in-process: Server_session.handle_line
   is the exact request pipeline behind `qroute serve` (parse, dispatch,
   route, serialize), minus the transport — so this transcript is also the
   protocol's executable documentation.  Watch the second route request come
   back with "cached":true and identical schedule bytes, and the 0 ms
   deadline turn into a deadline_exceeded error envelope. *)

open Qroute

let () =
  Metrics.enable ();
  let session = Server_session.create () in
  let say line =
    Printf.printf ">>> %s\n<<< %s\n\n" line
      (Server_session.handle_line session line)
  in
  (* Which engines is this server offering? *)
  say {|{"id": 1, "method": "engines"}|};
  (* Route a 4x4 reversal with the paper's LocalGridRoute. *)
  let route_req =
    {|{"id": 2, "method": "route", "params": {"grid": {"rows": 4, "cols": 4}, "perm": [15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0], "engine": "local"}}|}
  in
  say route_req;
  (* The same request again is answered from the plan cache. *)
  say (String.concat "" [ {|{"id": 3,|};
                          String.sub route_req 9 (String.length route_req - 9) ]);
  (* A different configuration is a different cache key. *)
  say
    {|{"id": 4, "method": "route", "params": {"grid": {"rows": 4, "cols": 4}, "perm": [15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0], "engine": "local", "config": {"transpose": false}}}|};
  (* Batches share the session's planning workspace. *)
  say
    {|{"id": 5, "method": "route_batch", "params": {"grid": {"rows": 2, "cols": 3}, "perms": [[5,4,3,2,1,0], [1,0,2,3,4,5]], "engine": "naive"}}|};
  (* A 0 ms budget expires before planning starts. *)
  say
    {|{"id": 6, "method": "route", "params": {"grid": {"rows": 8, "cols": 8}, "perm": [63,62,61,60,59,58,57,56,55,54,53,52,51,50,49,48,47,46,45,44,43,42,41,40,39,38,37,36,35,34,33,32,31,30,29,28,27,26,25,24,23,22,21,20,19,18,17,16,15,14,13,12,11,10,9,8,7,6,5,4,3,2,1,0]}, "deadline_ms": 0}|};
  (* Errors are envelopes too: unknown methods do not kill the session. *)
  say {|{"id": 7, "method": "teleport"}|};
  (* The health report shows the cache doing its job. *)
  say {|{"id": 8, "method": "health"}|};
  Printf.printf
    "plan cache after the session: %d entries, %d hits, %d misses\n"
    (Plan_cache.length (Server_session.cache session))
    (Plan_cache.hits (Server_session.cache session))
    (Plan_cache.misses (Server_session.cache session));
  Metrics.disable ()
